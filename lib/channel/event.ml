type t =
  | Injected of { id : int; src : int; dst : int }
  | Switched_on of { station : int }
  | Switched_off of { station : int }
  | Transmit of { station : int; light : bool }
  | Silence
  | Collision of { stations : int list }
  | Heard of { station : int; bits : int; light : bool }
  | Delivered of { id : int; from_ : int; dst : int; delay : int; hops : int }
  | Relayed of { id : int; from_ : int; relay : int; dst : int }
  | Stranded of { id : int; station : int }
  | Cap_exceeded of { on_count : int; cap : int }
  | Adoption_conflict of { stations : int list }
  | Spurious_adoption of { stations : int list }
  | Round_end of { on_count : int; draining : bool }
  | Station_crashed of { station : int; lost : int }
  | Station_restarted of { station : int }
  | Round_jammed of { transmitters : int; noise : bool }
  | Telemetry of { sample : (string * float) list }

let notable = function
  | Injected _ | Collision _ | Delivered _ | Relayed _ | Stranded _
  | Cap_exceeded _ | Adoption_conflict _ | Spurious_adoption _
  | Station_crashed _ | Station_restarted _ | Round_jammed _ ->
    true
  | Heard { light; _ } -> light
  | Switched_on _ | Switched_off _ | Transmit _ | Silence | Round_end _
  | Telemetry _ ->
    false

let stations_string stations =
  String.concat "," (List.map string_of_int stations)

let to_string = function
  | Injected { id; src; dst } -> Printf.sprintf "inject #%d %d->%d" id src dst
  | Switched_on { station } -> Printf.sprintf "on %d" station
  | Switched_off { station } -> Printf.sprintf "off %d" station
  | Transmit { station; light } ->
    Printf.sprintf "transmit %d%s" station (if light then " (light)" else "")
  | Silence -> "silence"
  | Collision { stations } ->
    Printf.sprintf "collision (%d transmitters)" (List.length stations)
  | Heard { station; bits; light } ->
    if light then Printf.sprintf "light message from %d" station
    else Printf.sprintf "heard from %d (%d control bits)" station bits
  | Delivered { id; from_; dst; delay; hops } ->
    Printf.sprintf "deliver #%d %d->%d (delay %d, hop %d)" id from_ dst delay
      hops
  | Relayed { id; from_; relay; dst } ->
    Printf.sprintf "relay #%d %d->(%d) dst %d" id from_ relay dst
  | Stranded { id; station } -> Printf.sprintf "stranded #%d at %d" id station
  | Cap_exceeded { on_count; cap } ->
    Printf.sprintf "cap exceeded (%d on, cap %d)" on_count cap
  | Adoption_conflict { stations } ->
    Printf.sprintf "adoption conflict (%s)" (stations_string stations)
  | Spurious_adoption { stations } ->
    Printf.sprintf "spurious adoption (%s)" (stations_string stations)
  | Round_end { on_count; draining } ->
    Printf.sprintf "round end (%d on%s)" on_count
      (if draining then ", draining" else "")
  | Station_crashed { station; lost } ->
    Printf.sprintf "crash %d (%d packets lost)" station lost
  | Station_restarted { station } -> Printf.sprintf "restart %d" station
  | Round_jammed { transmitters; noise } ->
    Printf.sprintf "%s (%d transmitters)"
      (if noise then "noise" else "jammed")
      transmitters
  | Telemetry { sample } ->
    Printf.sprintf "telemetry (%d metrics)" (List.length sample)

(* ---- JSON encoding ---- *)

(* Floats must round-trip through the line format exactly: integral
   values print without a fractional part, everything else uses enough
   digits to reconstruct the double. Non-finite values have no JSON
   spelling; they are clamped to 0. *)
let float_repr f =
  if f <> f || f = infinity || f = neg_infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let add_field buf name value =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf name;
  Buffer.add_string buf "\":";
  Buffer.add_string buf value

let int_field buf name v = add_field buf name (string_of_int v)
let bool_field buf name v = add_field buf name (if v then "true" else "false")

let ints_field buf name vs =
  add_field buf name ("[" ^ stations_string vs ^ "]")

let to_json ~round ev =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "{\"round\":";
  Buffer.add_string buf (string_of_int round);
  let typ name = add_field buf "type" ("\"" ^ name ^ "\"") in
  (match ev with
   | Injected { id; src; dst } ->
     typ "injected";
     int_field buf "id" id;
     int_field buf "src" src;
     int_field buf "dst" dst
   | Switched_on { station } ->
     typ "switched_on";
     int_field buf "station" station
   | Switched_off { station } ->
     typ "switched_off";
     int_field buf "station" station
   | Transmit { station; light } ->
     typ "transmit";
     int_field buf "station" station;
     bool_field buf "light" light
   | Silence -> typ "silence"
   | Collision { stations } ->
     typ "collision";
     ints_field buf "stations" stations
   | Heard { station; bits; light } ->
     typ "heard";
     int_field buf "station" station;
     int_field buf "bits" bits;
     bool_field buf "light" light
   | Delivered { id; from_; dst; delay; hops } ->
     typ "delivered";
     int_field buf "id" id;
     int_field buf "from" from_;
     int_field buf "dst" dst;
     int_field buf "delay" delay;
     int_field buf "hops" hops
   | Relayed { id; from_; relay; dst } ->
     typ "relayed";
     int_field buf "id" id;
     int_field buf "from" from_;
     int_field buf "relay" relay;
     int_field buf "dst" dst
   | Stranded { id; station } ->
     typ "stranded";
     int_field buf "id" id;
     int_field buf "station" station
   | Cap_exceeded { on_count; cap } ->
     typ "cap_exceeded";
     int_field buf "on" on_count;
     int_field buf "cap" cap
   | Adoption_conflict { stations } ->
     typ "adoption_conflict";
     ints_field buf "stations" stations
   | Spurious_adoption { stations } ->
     typ "spurious_adoption";
     ints_field buf "stations" stations
   | Round_end { on_count; draining } ->
     typ "round_end";
     int_field buf "on" on_count;
     bool_field buf "draining" draining
   | Station_crashed { station; lost } ->
     typ "station_crashed";
     int_field buf "station" station;
     int_field buf "lost" lost
   | Station_restarted { station } ->
     typ "station_restarted";
     int_field buf "station" station
   | Round_jammed { transmitters; noise } ->
     typ "round_jammed";
     int_field buf "transmitters" transmitters;
     bool_field buf "noise" noise
   | Telemetry { sample } ->
     typ "telemetry";
     Buffer.add_string buf ",\"sample\":{";
     List.iteri
       (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_char buf '"';
         String.iter
           (fun c ->
             match c with
             | '"' | '\\' ->
               Buffer.add_char buf '\\';
               Buffer.add_char buf c
             | c -> Buffer.add_char buf c)
           k;
         Buffer.add_string buf "\":";
         Buffer.add_string buf (float_repr v))
       sample;
     Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ---- JSON decoding ----

   A tiny recursive-descent parser for the flat objects emitted above:
   string keys mapping to ints, booleans, strings, or arrays of ints. No
   dependency on a JSON library; rejects anything deeper than we write. *)

type jv =
  | Jint of int
  | Jbool of bool
  | Jstr of string
  | Jints of int list
  | Jobj of (string * float) list

exception Bad of string

let parse_object line =
  let len = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < len then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < len
      && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> raise (Bad (Printf.sprintf "expected %C at offset %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    (* [hex4 at] reads exactly four hex digits at offset [at]. Character-
       validated by hand: [int_of_string "0x…"] would turn a malformed
       escape into an untyped [Failure] (crashing replay readers that only
       catch [Bad]) and silently accepts underscore forms like "12_3". *)
    let hex4 at =
      if at + 4 > len then raise (Bad "short \\u escape");
      let v = ref 0 in
      for i = at to at + 3 do
        let d =
          match line.[i] with
          | '0' .. '9' as c -> Char.code c - Char.code '0'
          | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
          | c -> raise (Bad (Printf.sprintf "bad hex digit %C in \\u escape" c))
        in
        v := (!v * 16) + d
      done;
      !v
    in
    let add_utf8 cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let rec go () =
      if !pos >= len then raise (Bad "unterminated string");
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= len then raise (Bad "dangling escape");
        (match line.[!pos] with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'u' ->
           (* Decode to UTF-8 bytes. Re-emitting a literal "\uXXXX" (the old
              behaviour for non-ASCII codepoints) broke the round trip: the
              decoded string differed from the one originally encoded. *)
           let code = hex4 (!pos + 1) in
           pos := !pos + 4;
           if code >= 0xD800 && code <= 0xDFFF then begin
             if code >= 0xDC00 then
               raise (Bad "unpaired low surrogate in \\u escape");
             if
               !pos + 2 >= len
               || line.[!pos + 1] <> '\\'
               || line.[!pos + 2] <> 'u'
             then raise (Bad "unpaired high surrogate in \\u escape");
             let low = hex4 (!pos + 3) in
             if not (low >= 0xDC00 && low <= 0xDFFF) then
               raise (Bad "invalid low surrogate in \\u escape");
             pos := !pos + 6;
             add_utf8 (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
           end
           else add_utf8 code
         | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < len && match line.[!pos] with '0' .. '9' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise (Bad "expected integer");
    int_of_string (String.sub line start (!pos - start))
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    let digits () =
      while
        !pos < len && match line.[!pos] with '0' .. '9' -> true | _ -> false
      do
        incr pos
      done
    in
    if peek () = Some '-' then incr pos;
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       incr pos;
       (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
       digits ()
     | _ -> ());
    if !pos = start then raise (Bad "expected number");
    float_of_string (String.sub line start (!pos - start))
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some 't' ->
      if !pos + 4 <= len && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4;
        Jbool true
      end
      else raise (Bad "bad literal")
    | Some 'f' ->
      if !pos + 5 <= len && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5;
        Jbool false
      end
      else raise (Bad "bad literal")
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Jints []
      end
      else begin
        let items = ref [ parse_int () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          items := parse_int () :: !items;
          skip_ws ()
        done;
        expect ']';
        Jints (List.rev !items)
      end
    | Some '{' ->
      (* Nested object of numbers — only [Telemetry.sample] is written
         this way; anything deeper is rejected. *)
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Jobj []
      end
      else begin
        let items = ref [] in
        let member () =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_number () in
          items := (k, v) :: !items
        in
        member ();
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          member ();
          skip_ws ()
        done;
        expect '}';
        Jobj (List.rev !items)
      end
    | Some ('-' | '0' .. '9') -> Jint (parse_int ())
    | _ -> raise (Bad (Printf.sprintf "unexpected input at offset %d" !pos))
  in
  expect '{';
  skip_ws ();
  let fields = ref [] in
  if peek () = Some '}' then incr pos
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      let v = parse_value () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
        incr pos;
        members ()
      | _ -> expect '}'
    in
    members ()
  end;
  skip_ws ();
  if !pos <> len then raise (Bad "trailing garbage after object");
  List.rev !fields

let of_json_line line =
  try
    let fields = parse_object line in
    let get name =
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Bad ("missing field " ^ name))
    in
    let int name =
      match get name with Jint v -> v | _ -> raise (Bad (name ^ ": not an int"))
    in
    let bool name =
      match get name with
      | Jbool v -> v
      | _ -> raise (Bad (name ^ ": not a bool"))
    in
    let ints name =
      match get name with
      | Jints v -> v
      | _ -> raise (Bad (name ^ ": not an int array"))
    in
    let str name =
      match get name with
      | Jstr v -> v
      | _ -> raise (Bad (name ^ ": not a string"))
    in
    let round = int "round" in
    let ev =
      match str "type" with
      | "injected" ->
        Injected { id = int "id"; src = int "src"; dst = int "dst" }
      | "switched_on" -> Switched_on { station = int "station" }
      | "switched_off" -> Switched_off { station = int "station" }
      | "transmit" ->
        Transmit { station = int "station"; light = bool "light" }
      | "silence" -> Silence
      | "collision" -> Collision { stations = ints "stations" }
      | "heard" ->
        Heard { station = int "station"; bits = int "bits"; light = bool "light" }
      | "delivered" ->
        Delivered
          { id = int "id"; from_ = int "from"; dst = int "dst";
            delay = int "delay"; hops = int "hops" }
      | "relayed" ->
        Relayed
          { id = int "id"; from_ = int "from"; relay = int "relay";
            dst = int "dst" }
      | "stranded" -> Stranded { id = int "id"; station = int "station" }
      | "cap_exceeded" -> Cap_exceeded { on_count = int "on"; cap = int "cap" }
      | "adoption_conflict" -> Adoption_conflict { stations = ints "stations" }
      | "spurious_adoption" -> Spurious_adoption { stations = ints "stations" }
      | "round_end" ->
        Round_end { on_count = int "on"; draining = bool "draining" }
      | "station_crashed" ->
        Station_crashed { station = int "station"; lost = int "lost" }
      | "station_restarted" -> Station_restarted { station = int "station" }
      | "round_jammed" ->
        Round_jammed { transmitters = int "transmitters"; noise = bool "noise" }
      | "telemetry" ->
        Telemetry
          { sample =
              (match get "sample" with
               | Jobj kvs -> kvs
               | _ -> raise (Bad "sample: not an object")) }
      | other -> raise (Bad ("unknown event type " ^ other))
    in
    Ok (round, ev)
  with
  | Bad msg -> Error msg
  | Failure msg -> Error msg
