type t = { id : int; src : int; dst : int; injected_at : int }

let make ~id ~src ~dst ~injected_at = { id; src; dst; injected_at }

let compare a b = Int.compare a.id b.id

let equal a b = a.id = b.id

let pp ppf p =
  Format.fprintf ppf "#%d(%d->%d@%d)" p.id p.src p.dst p.injected_at
