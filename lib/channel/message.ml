type control =
  | Count of int
  | Flag of bool
  | Schedule of int list

type t = { packet : Packet.t option; control : control list }

let make ?packet control = { packet; control }

let packet_only p = { packet = Some p; control = [] }

let light control = { packet = None; control }

let is_light m = m.packet = None

let is_plain m = m.control = [] && m.packet <> None

let bits_of_int c =
  let rec go acc c = if c = 0 then acc else go (acc + 1) (c lsr 1) in
  if c <= 0 then 1 else go 0 c

let control_bits m =
  let field = function
    | Count c -> bits_of_int c
    | Flag _ -> 1
    | Schedule l -> List.fold_left (fun acc r -> acc + bits_of_int r) (bits_of_int (List.length l)) l
  in
  List.fold_left (fun acc f -> acc + field f) 0 m.control

let pp_control ppf = function
  | Count c -> Format.fprintf ppf "cnt:%d" c
  | Flag b -> Format.fprintf ppf "flag:%b" b
  | Schedule l ->
    Format.fprintf ppf "sched:[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ';') Format.pp_print_int)
      l

let pp ppf m =
  Format.fprintf ppf "{pkt=%a; ctl=[%a]}"
    (Format.pp_print_option Packet.pp)
    m.packet
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_control)
    m.control
