type t =
  | Transmit of Message.t
  | Listen

let pp ppf = function
  | Transmit m -> Format.fprintf ppf "transmit %a" Message.pp m
  | Listen -> Format.pp_print_string ppf "listen"
