(** Exact rational arithmetic for admission control.

    The adversary's (ρ, β) type is defined by the exact window inequality
    injections(s, t] ≤ ρ·(t − s) + β; accumulating ρ in floating point
    drifts for non-dyadic rates (ρ = 1/10 gains or loses a whole token
    after ~10⁵ rounds), silently admitting one packet too many or too few.
    [Qrat] is the small exact-rational type the leaky bucket and every
    rate-carrying layer above it (adversary, scenarios, sweeps, CLI) are
    built on: normalised int numerator/denominator with overflow-checked
    operations, so equal rates are equal values and token arithmetic is
    exact forever.

    Values are kept canonical: the denominator is positive and
    gcd(|num|, den) = 1, so structural equality ([=]) is semantic
    equality. Every operation that could exceed the native int range
    raises {!Overflow} instead of wrapping. *)

type t = private { num : int; den : int }

exception Overflow of string
(** Raised when an intermediate product or sum leaves the native int
    range. Bucket arithmetic never triggers it (token numerators are
    bounded by the clamp), but pathological rationals can. *)

val make : int -> int -> t
(** [make num den] is the canonical [num/den]. Raises [Invalid_argument]
    when [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t

val num : t -> int
val den : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order by value; cross-multiplications are overflow-checked. *)

val min : t -> t -> t
val max : t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val neg : t -> t

val floor : t -> int
(** ⌊q⌋ (towards negative infinity). *)

val is_integer : t -> bool

val sign : t -> int

val of_float : float -> t
(** The simplest rational whose correctly-rounded float value is the
    argument: [to_float (of_float f) = f], with the smallest possible
    denominator (Stern–Brocot / continued fractions). Decimal literals
    snap to the rational they were meant to denote — [of_float 0.1] is
    1/10, [of_float 0.6] is 3/5 — so the deprecated float APIs lose
    nothing on the way in. Raises [Invalid_argument] on NaN/infinity. *)

val to_float : t -> float

val of_string : string -> (t, string) result
(** Accepts ["NUM/DEN"] (exact), decimal/scientific literals (via
    {!of_float}, so ["0.1"] is exactly 1/10) and plain integers. *)

val of_string_exn : string -> t
(** {!of_string}, raising [Invalid_argument] on parse errors. *)

val to_string : t -> string
(** ["num/den"], or just ["num"] for integers — re-parseable by
    {!of_string}. *)

val pp : Format.formatter -> t -> unit
