(** Bounded in-memory event trace for debugging simulations.

    Disabled traces cost a single branch per event. Enabled traces keep the
    last [capacity] formatted events in a ring buffer; [dump] returns them
    oldest-first. *)

type t

val create : ?capacity:int -> enabled:bool -> unit -> t

val enabled : t -> bool

val event : t -> round:int -> string -> unit
(** Record a pre-formatted event. Cheap no-op when the trace is disabled. *)

val eventf :
  t -> round:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are only evaluated when the
    trace is enabled. *)

val dump : t -> (int * string) list
(** Retained [(round, event)] pairs, oldest first. *)

val clear : t -> unit
