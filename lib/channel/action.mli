(** The action a switched-on station takes in a round: transmit a message or
    listen to the channel. Switched-off stations take no action. *)

type t =
  | Transmit of Message.t
  | Listen

val pp : Format.formatter -> t -> unit
