(** Channel feedback observed by a switched-on station at the end of a round.

    Exactly one transmitter: everybody switched on hears the message,
    including the transmitter. Two or more transmitters: nobody hears
    anything ([Collision]). No transmitter: the round is silent. Switched-off
    stations receive no feedback at all (the engine never calls their observe
    hook). The paper's algorithms never rely on distinguishing [Silence] from
    [Collision]; the distinction exists for diagnostics. *)

type t =
  | Silence
  | Collision
  | Heard of Message.t

val pp : Format.formatter -> t -> unit
