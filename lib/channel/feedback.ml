type t =
  | Silence
  | Collision
  | Heard of Message.t

let pp ppf = function
  | Silence -> Format.pp_print_string ppf "silence"
  | Collision -> Format.pp_print_string ppf "collision"
  | Heard m -> Format.fprintf ppf "heard %a" Message.pp m
