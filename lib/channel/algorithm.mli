(** The contract between a distributed routing algorithm and the channel.

    An algorithm is executed by all stations concurrently: the engine
    instantiates one [state] per station with [create] and drives the hooks
    each round. Stations share no memory; all coordination flows through
    channel feedback, exactly as in the paper's model:

    - [on_duty] is the station's on/off decision for the round (the paper's
      programmable wakeup mechanism). Switched-off stations neither transmit
      nor hear anything.
    - [act] is called for switched-on stations: transmit a message or listen.
    - [observe] delivers the round's feedback to switched-on stations only;
      the returned {!Reaction.t} may adopt a heard, undelivered packet.
    - [offline_tick] lets switched-off stations advance local bookkeeping
      (their clock keeps running and the adversary may have grown their
      queue); faithful algorithms read nothing else from it.

    The declared classification flags ([plain_packet], [direct], [oblivious])
    are enforced by the engine: plain-packet algorithms may only transmit
    bare packets, direct algorithms may never adopt, and oblivious algorithms
    must expose their precomputed on/off schedule via [static_schedule]
    (tests check [on_duty] agrees with it and ignores traffic). *)

(** Closed-form schedule knowledge for the engine's sparse/skip-ahead path
    (see {!S.sparse} for the full contract each field must satisfy). *)
type sparse = {
  on_set : round:int -> int array;
      (** Exactly the stations scheduled on at [round], strictly ascending. *)
  on_count_in : from:int -> until:int -> cap:int -> int * int * int;
      (** [(sum, max, exceeding)] of per-round on-set sizes over
          [from, until): their sum, their maximum (0 on an empty range),
          and the count of rounds whose size exceeds [cap]. *)
  next_active : round:int -> nonempty:(int * Pqueue.t) list -> int option;
      (** Earliest round [>= round] at which a scheduled station could
          transmit, given that only the listed stations hold packets and
          queues do not change; [None] = never. *)
}

module type S = sig
  type state

  val name : string

  val plain_packet : bool
  (** Messages are exactly one packet, no control bits. *)

  val direct : bool
  (** Every packet makes a single hop: injection station to destination. *)

  val oblivious : bool
  (** The on/off schedule of every station is fixed before the execution. *)

  val required_cap : n:int -> k:int -> int
  (** The energy cap the algorithm actually respects for a system of [n]
      stations when the supply caps at [k] (e.g. Orchestra answers 3;
      k-Cycle may answer less than [k] after its internal adjustment). *)

  val static_schedule : (n:int -> k:int -> me:int -> round:int -> bool) option
  (** For oblivious algorithms, the pure schedule; [None] otherwise. *)

  val create : n:int -> k:int -> me:int -> state

  val on_duty : state -> round:int -> queue:Pqueue.t -> bool

  val act : state -> round:int -> queue:Pqueue.t -> Action.t

  val observe :
    state -> round:int -> queue:Pqueue.t -> feedback:Feedback.t -> Reaction.t

  val offline_tick : state -> round:int -> queue:Pqueue.t -> unit

  val sparse : (n:int -> k:int -> sparse) option
  (** Closed-form schedule queries enabling the engine's sparse/skip-ahead
      execution path; [None] (the conservative default — always correct)
      keeps the algorithm on the dense path. Providing [Some make] asserts:
      [on_duty] equals [static_schedule] everywhere (pure,
      traffic-independent); [on_set]/[on_count_in]/[next_active] answer as
      documented on {!sparse}; [offline_tick] is an unconditional no-op
      (never called by the sparse engine); and on rounds where a station
      holds no transmittable packet, [act] is [Listen] and [observe] of
      silence is [No_reaction], with no state mutation — so station state
      after a provably-silent stretch equals state before it. The
      engine's sparse mode is differentially
      certified against the dense engine (events, summaries, checkpoint
      bytes); a hook violating this contract is caught by that harness. *)

  val state_version : int
  (** Version tag of the encoded-state format. Bump whenever [state]'s
      layout changes so stale checkpoints are rejected instead of
      misinterpreted. *)

  val encode_state : state -> string
  (** Serialise a station's full mutable state for a checkpoint. Must be a
      lossless round-trip with {!decode_state}: the decoded state behaves
      bit-identically to the original on every future round. *)

  val decode_state : string -> state
  (** Inverse of {!encode_state}. Only called on strings produced by the
      same [state_version] of the same algorithm (the checkpoint layer
      validates both before calling). *)
end

(** Default codec for algorithms whose [state] is pure data (no closures, no
    custom blocks): OCaml's [Marshal] round-trips such values exactly,
    including hashtable layout. Usage inside an implementation:
    [include Algorithm.Marshal_codec (struct type nonrec state = state end)]. *)
module Marshal_codec (T : sig
  type state
end) : sig
  val state_version : int
  val encode_state : T.state -> string
  val decode_state : string -> T.state
end

type t = (module S)

val describe : t -> string
(** One-line classification: name plus Obl/NObl, Gen/PP, Dir/Ind flags in the
    paper's Table-1 notation. *)
