type t =
  | No_reaction
  | Adopt_heard_packet

let pp ppf = function
  | No_reaction -> Format.pp_print_string ppf "no-reaction"
  | Adopt_heard_packet -> Format.pp_print_string ppf "adopt"
