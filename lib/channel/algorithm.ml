module type S = sig
  type state

  val name : string
  val plain_packet : bool
  val direct : bool
  val oblivious : bool
  val required_cap : n:int -> k:int -> int
  val static_schedule : (n:int -> k:int -> me:int -> round:int -> bool) option
  val create : n:int -> k:int -> me:int -> state
  val on_duty : state -> round:int -> queue:Pqueue.t -> bool
  val act : state -> round:int -> queue:Pqueue.t -> Action.t

  val observe :
    state -> round:int -> queue:Pqueue.t -> feedback:Feedback.t -> Reaction.t

  val offline_tick : state -> round:int -> queue:Pqueue.t -> unit
end

type t = (module S)

let describe (module A : S) =
  Printf.sprintf "%s [%s-%s-%s]" A.name
    (if A.oblivious then "Obl" else "NObl")
    (if A.plain_packet then "PP" else "Gen")
    (if A.direct then "Dir" else "Ind")
