module type S = sig
  type state

  val name : string
  val plain_packet : bool
  val direct : bool
  val oblivious : bool
  val required_cap : n:int -> k:int -> int
  val static_schedule : (n:int -> k:int -> me:int -> round:int -> bool) option
  val create : n:int -> k:int -> me:int -> state
  val on_duty : state -> round:int -> queue:Pqueue.t -> bool
  val act : state -> round:int -> queue:Pqueue.t -> Action.t

  val observe :
    state -> round:int -> queue:Pqueue.t -> feedback:Feedback.t -> Reaction.t

  val offline_tick : state -> round:int -> queue:Pqueue.t -> unit

  val state_version : int
  (** Version tag of the encoded-state format. Bump whenever [state]'s
      layout changes so stale checkpoints are rejected instead of
      misinterpreted. *)

  val encode_state : state -> string
  (** Serialise a station's full mutable state for a checkpoint. Must be a
      lossless round-trip with {!decode_state}: the decoded state behaves
      bit-identically to the original on every future round. *)

  val decode_state : string -> state
  (** Inverse of {!encode_state}. Only called on strings produced by the
      same [state_version] of the same algorithm (the checkpoint layer
      validates both before calling). *)
end

(** Default codec for algorithms whose [state] is pure data (no closures,
    no custom blocks): OCaml's [Marshal] round-trips such values exactly,
    including hashtable bucket layout. Usage inside an implementation:
    [include Algorithm.Marshal_codec (struct type nonrec state = state end)]. *)
module Marshal_codec (T : sig
  type state
end) =
struct
  let state_version = 1
  let encode_state (s : T.state) = Marshal.to_string s []
  let decode_state (b : string) : T.state = Marshal.from_string b 0
end

type t = (module S)

let describe (module A : S) =
  Printf.sprintf "%s [%s-%s-%s]" A.name
    (if A.oblivious then "Obl" else "NObl")
    (if A.plain_packet then "PP" else "Gen")
    (if A.direct then "Dir" else "Ind")
