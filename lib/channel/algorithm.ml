(* Closed-form schedule knowledge an algorithm may expose so the engine can
   run it sparsely (touch only scheduled stations) and skip provably-idle
   stretches analytically. See the [sparse] val in {!S} for the contract. *)
type sparse = {
  on_set : round:int -> int array;
  on_count_in : from:int -> until:int -> cap:int -> int * int * int;
  next_active : round:int -> nonempty:(int * Pqueue.t) list -> int option;
}

module type S = sig
  type state

  val name : string
  val plain_packet : bool
  val direct : bool
  val oblivious : bool
  val required_cap : n:int -> k:int -> int
  val static_schedule : (n:int -> k:int -> me:int -> round:int -> bool) option
  val create : n:int -> k:int -> me:int -> state
  val on_duty : state -> round:int -> queue:Pqueue.t -> bool
  val act : state -> round:int -> queue:Pqueue.t -> Action.t

  val observe :
    state -> round:int -> queue:Pqueue.t -> feedback:Feedback.t -> Reaction.t

  val offline_tick : state -> round:int -> queue:Pqueue.t -> unit

  val sparse : (n:int -> k:int -> sparse) option
  (** Closed-form schedule queries enabling the engine's sparse/skip-ahead
      execution path; [None] (the conservative default — correct for every
      algorithm) keeps the algorithm on the dense path.

      Providing [Some make] asserts all of the following, which the sparse
      engine relies on for bit-identical execution:
      - [on_duty] equals [static_schedule] for every station and round
        (pure, traffic-independent), and [make ~n ~k] returns:
      - [on_set ~round]: exactly the stations whose schedule is on at
        [round], strictly ascending;
      - [on_count_in ~from ~until ~cap]: the closed-form triple
        [(sum, max, exceeding)] of per-round on-set sizes over rounds
        [from, until): their sum, their maximum (0 when the range is
        empty), and the number of rounds whose size exceeds [cap];
      - [next_active ~round ~nonempty]: given the non-empty queues
        ([nonempty] lists each station holding packets, in no particular
        order) and assuming no queue changes, the earliest round [>= round]
        at which some scheduled station's [act] could transmit; [None] if
        that never happens. It must never be later than the true next
        transmission round (earlier is merely wasteful);
      - [offline_tick] is an unconditional no-op (the sparse engine never
        calls it), and on rounds where the station holds no transmittable
        packet, [act] returns [Listen] and [observe] of [Feedback.Silence]
        returns [No_reaction] — neither mutates any state on such rounds,
        so station state after a silent stretch equals state before it. *)

  val state_version : int
  (** Version tag of the encoded-state format. Bump whenever [state]'s
      layout changes so stale checkpoints are rejected instead of
      misinterpreted. *)

  val encode_state : state -> string
  (** Serialise a station's full mutable state for a checkpoint. Must be a
      lossless round-trip with {!decode_state}: the decoded state behaves
      bit-identically to the original on every future round. *)

  val decode_state : string -> state
  (** Inverse of {!encode_state}. Only called on strings produced by the
      same [state_version] of the same algorithm (the checkpoint layer
      validates both before calling). *)
end

(** Default codec for algorithms whose [state] is pure data (no closures,
    no custom blocks): OCaml's [Marshal] round-trips such values exactly,
    including hashtable bucket layout. Usage inside an implementation:
    [include Algorithm.Marshal_codec (struct type nonrec state = state end)]. *)
module Marshal_codec (T : sig
  type state
end) =
struct
  let state_version = 1
  let encode_state (s : T.state) = Marshal.to_string s []
  let decode_state (b : string) : T.state = Marshal.from_string b 0
end

type t = (module S)

let describe (module A : S) =
  Printf.sprintf "%s [%s-%s-%s]" A.name
    (if A.oblivious then "Obl" else "NObl")
    (if A.plain_packet then "PP" else "Gen")
    (if A.direct then "Dir" else "Ind")
