(** Reaction of a switched-on station to the round's feedback.

    When a message carrying a packet is heard but the packet's destination is
    switched off, some station may adopt the packet, becoming its relay (the
    packet then leaves the transmitter's queue and joins the adopter's). The
    engine checks that at most one station adopts and that direct-routing
    algorithms never adopt. *)

type t =
  | No_reaction
  | Adopt_heard_packet

val pp : Format.formatter -> t -> unit
