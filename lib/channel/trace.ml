type t = {
  enabled : bool;
  capacity : int;
  buf : (int * string) array;
  mutable count : int; (* total events recorded *)
}

let create ?(capacity = 4096) ~enabled () =
  { enabled; capacity; buf = Array.make (max capacity 1) (0, ""); count = 0 }

let enabled t = t.enabled

let event t ~round msg =
  if t.enabled then begin
    t.buf.(t.count mod t.capacity) <- (round, msg);
    t.count <- t.count + 1
  end

(* A sink formatter that discards everything: the disabled path must not
   touch shared mutable state (Format.str_formatter is global). ikfprintf
   never writes to it, but handing out the global formatter at all invites
   misuse; a dedicated null formatter has no such hazard. *)
let null_formatter =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let eventf t ~round fmt =
  if t.enabled then
    Format.kasprintf (fun msg -> event t ~round msg) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

let dump t =
  let len = min t.count t.capacity in
  let start = t.count - len in
  List.init len (fun i -> t.buf.((start + i) mod t.capacity))

let clear t = t.count <- 0
