(** Energy accounting.

    Keeping a station switched on for a round costs one energy unit; keeping
    it off is free. The system's expenditure in a round equals the number of
    switched-on stations, and the energy cap is an upper bound on that count.
    The accountant records per-round expenditure and flags cap violations —
    a correct run of a k-energy algorithm must report zero violations. *)

type t

val create : cap:int -> t

val cap : t -> int

val record_round : t -> on_count:int -> unit

val rounds : t -> int
(** Number of rounds recorded. *)

val max_on : t -> int
(** Maximum simultaneous switched-on stations seen in any round. *)

val total_station_rounds : t -> int
(** Total energy spent: sum over rounds of switched-on counts. *)

val mean_on : t -> float
(** Average energy per round. *)

val violations : t -> int
(** Number of rounds in which the cap was exceeded. *)
