(** Packets routed on the channel.

    A packet [(d, c)] in the paper consists of a destination address and an
    opaque content. For the simulator the content is replaced by a unique id
    plus provenance metadata used only for metrics (injection round for delay
    accounting, injection station for hop accounting); algorithms may read
    [dst] and [id] only. *)

type t = private {
  id : int;            (** unique across a run *)
  src : int;           (** station the adversary injected the packet into *)
  dst : int;           (** destination station name, in [0, n-1] *)
  injected_at : int;   (** round of injection *)
}

val make : id:int -> src:int -> dst:int -> injected_at:int -> t

val compare : t -> t -> int
(** Total order by [id]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
