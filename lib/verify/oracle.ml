open Mac_channel

exception Violation of string

type digest = {
  rounds : int;
  drain_rounds : int;
  injected : int;
  delivered : int;
  undelivered : int;
  max_delay : int;
  mean_delay : float;
  max_queued_age : int;
  max_total_queue : int;
  final_total_queue : int;
  max_station_queue : int;
  energy_cap : int;
  max_on : int;
  mean_on : float;
  station_rounds : int;
  silent_rounds : int;
  light_rounds : int;
  delivery_rounds : int;
  relay_rounds : int;
  collision_rounds : int;
  max_hops : int;
  control_bits_total : int;
  control_bits_max : int;
  cap_exceeded : int;
  stranded : int;
  adoption_conflicts : int;
  spurious_adoptions : int;
  crashes : int;
  restarts : int;
  jammed_rounds : int;
  noise_rounds : int;
  lost_to_crash : int;
  last_fault_round : int;
  pre_fault_queue : int;
  post_fault_peak_queue : int;
  recovery_rounds : int;
}

(* One record per packet ever injected into a queue, kept in a plain list
   and found by linear scan — the naive registry. *)
type flight = {
  packet : Packet.t;
  mutable delivered : bool;
  mutable hops : int;
}

let run ~algorithm:(module A : Algorithm.S) ~n ~k ~rate ~burst ~pacing ~pattern
    ~rounds ~drain ?(strict = false) ?faults () =
  let cap = A.required_cap ~n ~k in
  let queues = Array.init n (fun _ -> Pqueue.create ~n) in
  let states = Array.init n (fun me -> A.create ~n ~k ~me) in
  let flights : flight list ref = ref [] in
  let next_id = ref 0 in
  let prev_on = Array.make n false in
  let on = Array.make n false in
  let crashed = Array.make n false in
  let jam_now = ref false in
  let noise_now = ref false in
  let events_rev : (int * Event.t) list ref = ref [] in
  let emit ~round ev = events_rev := (round, ev) :: !events_rev in

  (* The exact leaky bucket, restated: tokens start at rate + burst and
     are clamped there, every admitted packet costs one token, every
     round adds rate. All arithmetic is rational — this is the paper's
     recurrence, not a port of [Leaky_bucket]. *)
  if not (Qrat.sign rate > 0 && Qrat.compare rate Qrat.one <= 0) then
    invalid_arg "Oracle: rate must be in (0, 1]";
  if Qrat.compare burst Qrat.one < 0 then invalid_arg "Oracle: burst must be >= 1";
  let bucket_cap = Qrat.add rate burst in
  let tokens = ref bucket_cap in

  (* Naive scans, recomputed on demand. *)
  let station_queue i = Pqueue.fold queues.(i) ~init:0 ~f:(fun c _ -> c + 1) in
  let scan_total () =
    let total = ref 0 in
    for i = 0 to n - 1 do
      total := !total + station_queue i
    done;
    !total
  in
  let find_flight id =
    match List.find_opt (fun f -> f.packet.Packet.id = id) !flights with
    | Some f -> f
    | None -> raise (Violation "oracle lost track of a packet")
  in
  let remove_from_queue i (p : Packet.t) =
    if not (Pqueue.remove queues.(i) p) then
      raise (Violation "heard packet missing from the transmitter's queue")
  in

  (* Digest counters. *)
  let injected = ref 0 and delivered = ref 0 in
  let normal_rounds = ref 0 and drain_rounds = ref 0 in
  let max_delay = ref 0 and delay_sum = ref 0.0 in
  let max_total_queue = ref 0 and max_station_queue = ref 0 in
  let max_on = ref 0 and on_total = ref 0 in
  let silent_rounds = ref 0 and light_rounds = ref 0 in
  let delivery_rounds = ref 0 and relay_rounds = ref 0 in
  let collision_rounds = ref 0 and max_hops = ref 0 in
  let control_bits_total = ref 0 and control_bits_max = ref 0 in
  let cap_exceeded = ref 0 and stranded = ref 0 in
  let adoption_conflicts = ref 0 and spurious_adoptions = ref 0 in
  let crashes = ref 0 and restarts = ref 0 in
  let jammed_rounds = ref 0 and noise_rounds = ref 0 in
  let lost = ref 0 in
  let first_fault_round = ref (-1) and last_fault_round = ref (-1) in
  let pre_fault_queue = ref 0 and post_fault_peak = ref 0 in
  let last_exceed = ref (-1) in

  (* [backlog] is the total queue size at the instant the fault is booked
     — for a crash that drops its queue, the size measured just before
     the drop, which is what "backlog before the first fault" means. *)
  let note_fault ~round ~backlog =
    if !first_fault_round < 0 then begin
      first_fault_round := round;
      pre_fault_queue := backlog;
      post_fault_peak := backlog
    end;
    last_fault_round := round;
    if backlog > !post_fault_peak then post_fault_peak := backlog
  in
  let note_jammed ~round ~noise =
    note_fault ~round ~backlog:(scan_total ());
    incr jammed_rounds;
    if noise then incr noise_rounds
  in

  let violation note msg =
    note ();
    if strict then raise (Violation msg)
  in

  let plan =
    match faults with
    | Some p when not (Mac_faults.Fault_plan.is_empty p) -> Some p
    | _ -> None
  in
  let apply_faults round =
    match plan with
    | None -> ()
    | Some p ->
      jam_now := false;
      noise_now := false;
      List.iter
        (fun (a : Mac_faults.Fault_plan.action) ->
          match a with
          | Crash { station = i; queue = policy } ->
            if i < 0 || i >= n then
              raise
                (Violation
                   (Printf.sprintf "fault plan crashes station %d (n = %d)" i n));
            if not crashed.(i) then begin
              crashed.(i) <- true;
              let backlog = scan_total () in
              let dropped =
                match policy with
                | Mac_faults.Fault_plan.Retain -> 0
                | Mac_faults.Fault_plan.Drop ->
                  let gone = Pqueue.drain queues.(i) in
                  flights :=
                    List.filter
                      (fun f ->
                        not
                          (List.exists
                             (fun (q : Packet.t) -> q.Packet.id = f.packet.Packet.id)
                             gone))
                      !flights;
                  List.length gone
              in
              lost := !lost + dropped;
              note_fault ~round ~backlog;
              incr crashes;
              emit ~round (Event.Station_crashed { station = i; lost = dropped })
            end
          | Restart { station = i } ->
            if i < 0 || i >= n then
              raise
                (Violation
                   (Printf.sprintf "fault plan restarts station %d (n = %d)" i n));
            if crashed.(i) then begin
              crashed.(i) <- false;
              states.(i) <- A.create ~n ~k ~me:i;
              note_fault ~round ~backlog:(scan_total ());
              incr restarts;
              emit ~round (Event.Station_restarted { station = i })
            end
          | Jam -> jam_now := true
          | Noise -> noise_now := true)
        (Mac_faults.Fault_plan.actions p ~round)
  in

  let view : Mac_adversary.View.t =
    { n; round = 0;
      queue_size = (fun i -> station_queue i);
      queued_to =
        (fun d ->
          let total = ref 0 in
          for i = 0 to n - 1 do
            Pqueue.iter queues.(i) ~f:(fun p ->
                if p.Packet.dst = d then incr total)
          done;
          !total);
      total_queued = (fun () -> scan_total ());
      was_on = (fun i -> prev_on.(i)) }
  in

  (* Admission, the paper's way: pacing caps the desire, the bucket caps
     the admission, self-addressed proposals are dropped without cost. *)
  let desired ~round =
    match pacing with
    | Mac_adversary.Adversary.Greedy -> max_int
    | Mac_adversary.Adversary.Paced { burst_at } ->
      let steady =
        Qrat.floor (Qrat.mul_int rate (round + 1))
        - Qrat.floor (Qrat.mul_int rate round)
      in
      let extra =
        match burst_at with
        | Some b when b = round -> Qrat.floor burst
        | _ -> 0
      in
      steady + extra
  in
  let inject round =
    view.Mac_adversary.View.round <- round;
    let budget = min (Qrat.floor !tokens) (desired ~round) in
    let proposed =
      if budget <= 0 then []
      else pattern.Mac_adversary.Pattern.generate ~round ~budget ~view
    in
    let accepted = ref 0 in
    List.iteri
      (fun idx (src, dst) ->
        if idx < budget && src <> dst then begin
          if src < 0 || src >= n || dst < 0 || dst >= n then
            raise (Violation "adversary injected out-of-range station");
          incr accepted;
          let id = !next_id in
          incr next_id;
          let p = Packet.make ~id ~src ~dst ~injected_at:round in
          if src = dst then begin
            (* unreachable here, kept for symmetry with the engine *)
            incr injected;
            incr delivered;
            incr delivery_rounds;
            emit ~round (Event.Injected { id; src; dst });
            emit ~round
              (Event.Delivered { id; from_ = src; dst; delay = 0; hops = 0 })
          end
          else begin
            Pqueue.add queues.(src) p;
            flights := { packet = p; delivered = false; hops = 0 } :: !flights;
            incr injected;
            let total = scan_total () in
            if total > !max_total_queue then max_total_queue := total;
            let sq = station_queue src in
            if sq > !max_station_queue then max_station_queue := sq;
            emit ~round (Event.Injected { id; src; dst })
          end
        end)
      proposed;
    tokens := Qrat.sub !tokens (Qrat.of_int !accepted);
    tokens := Qrat.min bucket_cap (Qrat.add !tokens rate)
  in

  let step ~round ~draining =
    if not draining then inject round;
    apply_faults round;
    (* Mode decisions. *)
    let on_count = ref 0 in
    for i = 0 to n - 1 do
      on.(i) <- (not crashed.(i)) && A.on_duty states.(i) ~round ~queue:queues.(i);
      if on.(i) then incr on_count;
      if on.(i) <> prev_on.(i) then
        emit ~round
          (if on.(i) then Event.Switched_on { station = i }
           else Event.Switched_off { station = i })
    done;
    on_total := !on_total + !on_count;
    if !on_count > !max_on then max_on := !on_count;
    if !on_count > cap then begin
      incr cap_exceeded;
      emit ~round (Event.Cap_exceeded { on_count = !on_count; cap })
    end;
    (* Actions of switched-on stations, in station order. *)
    let txs = ref [] in
    for i = 0 to n - 1 do
      if on.(i) then
        match A.act states.(i) ~round ~queue:queues.(i) with
        | Action.Listen -> ()
        | Action.Transmit m ->
          (match m.Message.packet with
           | Some p ->
             if
               not
                 (List.exists
                    (fun (q : Packet.t) -> q.Packet.id = p.Packet.id)
                    (Pqueue.to_list queues.(i)))
             then
               raise
                 (Violation
                    (Printf.sprintf
                       "station %d transmitted a packet not in its queue" i))
           | None -> ());
          if A.plain_packet && not (Message.is_plain m) then
            raise
              (Violation
                 (Printf.sprintf
                    "plain-packet algorithm %s sent a non-plain message" A.name));
          txs := (i, m) :: !txs
    done;
    let txs = List.rev !txs in
    List.iter
      (fun (i, m) ->
        emit ~round
          (Event.Transmit { station = i; light = m.Message.packet = None }))
      txs;
    (* Channel resolution. *)
    let jammed = !jam_now || !noise_now in
    let feedback, heard =
      match txs with
      | [] ->
        if !noise_now then begin
          note_jammed ~round ~noise:true;
          incr collision_rounds;
          emit ~round (Event.Round_jammed { transmitters = 0; noise = true });
          emit ~round (Event.Collision { stations = [] });
          (Feedback.Collision, None)
        end
        else begin
          if !jam_now then begin
            note_jammed ~round ~noise:false;
            emit ~round (Event.Round_jammed { transmitters = 0; noise = false })
          end;
          incr silent_rounds;
          emit ~round Event.Silence;
          (Feedback.Silence, None)
        end
      | [ (s, m) ] when not jammed -> (Feedback.Heard m, Some (s, m))
      | _ ->
        if jammed then begin
          note_jammed ~round ~noise:!noise_now;
          emit ~round
            (Event.Round_jammed
               { transmitters = List.length txs; noise = !noise_now })
        end;
        incr collision_rounds;
        emit ~round (Event.Collision { stations = List.map fst txs });
        (Feedback.Collision, None)
    in
    (* The heard message, if any. *)
    let pending = ref None in
    (match heard with
     | None -> ()
     | Some (s, m) ->
       let bits = Message.control_bits m in
       control_bits_total := !control_bits_total + bits;
       if bits > !control_bits_max then control_bits_max := bits;
       emit ~round
         (Event.Heard { station = s; bits; light = m.Message.packet = None });
       (match m.Message.packet with
        | None -> incr light_rounds
        | Some p ->
          remove_from_queue s p;
          let f = find_flight p.Packet.id in
          f.hops <- f.hops + 1;
          if on.(p.Packet.dst) then begin
            if f.delivered then raise (Violation "duplicate delivery");
            f.delivered <- true;
            incr delivered;
            incr delivery_rounds;
            let delay = round - p.Packet.injected_at in
            delay_sum := !delay_sum +. float_of_int delay;
            if delay > !max_delay then max_delay := delay;
            if f.hops > !max_hops then max_hops := f.hops;
            emit ~round
              (Event.Delivered
                 { id = p.Packet.id; from_ = s; dst = p.Packet.dst; delay;
                   hops = f.hops })
          end
          else pending := Some (s, p)));
    (* Feedback and reactions. *)
    let adopters = ref [] in
    for i = 0 to n - 1 do
      if on.(i) then
        match A.observe states.(i) ~round ~queue:queues.(i) ~feedback with
        | Reaction.No_reaction -> ()
        | Reaction.Adopt_heard_packet -> adopters := i :: !adopters
    done;
    let adopters = List.rev !adopters in
    (match (!pending, adopters) with
     | None, [] -> ()
     | None, _ :: _ ->
       emit ~round (Event.Spurious_adoption { stations = adopters });
       violation
         (fun () -> incr spurious_adoptions)
         "adoption reaction with no packet pending"
     | Some (s, p), [] ->
       Pqueue.add queues.(s) p;
       emit ~round (Event.Stranded { id = p.Packet.id; station = s });
       violation
         (fun () -> incr stranded)
         (Printf.sprintf "packet %d stranded at round %d" p.Packet.id round)
     | Some (s, p), adopter :: rest ->
       if rest <> [] then begin
         emit ~round (Event.Adoption_conflict { stations = adopters });
         violation
           (fun () -> incr adoption_conflicts)
           "multiple stations adopted the same packet"
       end;
       if adopter = s then raise (Violation "transmitter adopted its own packet");
       if A.direct then
         raise
           (Violation (Printf.sprintf "direct algorithm %s used a relay" A.name));
       Pqueue.add queues.(adopter) p;
       incr relay_rounds;
       let sq = station_queue adopter in
       if sq > !max_station_queue then max_station_queue := sq;
       emit ~round
         (Event.Relayed
            { id = p.Packet.id; from_ = s; relay = adopter; dst = p.Packet.dst }));
    for i = 0 to n - 1 do
      if (not on.(i)) && not crashed.(i) then
        A.offline_tick states.(i) ~round ~queue:queues.(i)
    done;
    Array.blit on 0 prev_on 0 n;
    if draining then incr drain_rounds else incr normal_rounds;
    if !first_fault_round >= 0 then begin
      let q = scan_total () in
      if q > !post_fault_peak then post_fault_peak := q;
      if q > !pre_fault_queue then last_exceed := round
    end;
    (* First-principles conservation: every packet the oracle admitted is
       delivered, sitting in exactly one queue, or lost to a crash. *)
    if scan_total () <> !injected - !delivered - !lost then
      raise (Violation "packet conservation failed");
    emit ~round (Event.Round_end { on_count = !on_count; draining })
  in

  for round = 0 to rounds - 1 do
    step ~round ~draining:false
  done;
  let round = ref rounds in
  let drained = ref 0 in
  while !drained < drain && scan_total () > 0 do
    step ~round:!round ~draining:true;
    incr round;
    incr drained
  done;
  let final_round = !round in
  (* End-of-run checks, by scanning: no packet in two queues, no delivered
     packet still queued, and the oldest queued packet's age. *)
  let seen = ref [] in
  let max_age = ref 0 in
  Array.iter
    (fun q ->
      Pqueue.iter q ~f:(fun p ->
          if List.mem p.Packet.id !seen then
            raise (Violation "packet present in two queues");
          seen := p.Packet.id :: !seen;
          let f = find_flight p.Packet.id in
          if f.delivered then raise (Violation "delivered packet still queued");
          let age = final_round - p.Packet.injected_at in
          if age > !max_age then max_age := age))
    queues;
  let total_rounds = !normal_rounds + !drain_rounds in
  let digest =
    { rounds = !normal_rounds;
      drain_rounds = !drain_rounds;
      injected = !injected;
      delivered = !delivered;
      undelivered = !injected - !delivered;
      max_delay = !max_delay;
      mean_delay =
        (if !delivered = 0 then 0.0 else !delay_sum /. float_of_int !delivered);
      max_queued_age = !max_age;
      max_total_queue = !max_total_queue;
      final_total_queue = scan_total ();
      max_station_queue = !max_station_queue;
      energy_cap = cap;
      max_on = !max_on;
      mean_on =
        (if total_rounds = 0 then 0.0
         else float_of_int !on_total /. float_of_int total_rounds);
      station_rounds = !on_total;
      silent_rounds = !silent_rounds;
      light_rounds = !light_rounds;
      delivery_rounds = !delivery_rounds;
      relay_rounds = !relay_rounds;
      collision_rounds = !collision_rounds;
      max_hops = !max_hops;
      control_bits_total = !control_bits_total;
      control_bits_max = !control_bits_max;
      cap_exceeded = !cap_exceeded;
      stranded = !stranded;
      adoption_conflicts = !adoption_conflicts;
      spurious_adoptions = !spurious_adoptions;
      crashes = !crashes;
      restarts = !restarts;
      jammed_rounds = !jammed_rounds;
      noise_rounds = !noise_rounds;
      lost_to_crash = !lost;
      last_fault_round = !last_fault_round;
      pre_fault_queue = (if !first_fault_round < 0 then 0 else !pre_fault_queue);
      post_fault_peak_queue = !post_fault_peak;
      recovery_rounds =
        (let final_total = scan_total () in
         if !last_fault_round >= 0 && final_total <= !pre_fault_queue then
           let back =
             if !last_exceed >= !last_fault_round then !last_exceed + 1
             else !last_fault_round
           in
           back - !last_fault_round
         else -1) }
  in
  (digest, List.rev !events_rev)
