open Mac_channel

type run = {
  id : string;
  algorithm : Algorithm.t;
  n : int;
  k : int;
  rate : Qrat.t;
  burst : Qrat.t;
  pacing : Mac_adversary.Adversary.pacing;
  pattern : Mac_adversary.Pattern.t;
  rounds : int;
  drain : int;
  faults : Mac_faults.Fault_plan.t option;
}

type mismatch = { what : string; engine : string; oracle : string }

type verdict = {
  id : string;
  events : int;
  mismatches : mismatch list;
}

let agrees v = v.mismatches = []

let pp_verdict ppf v =
  if agrees v then
    Format.fprintf ppf "%s: ok (%d events)" v.id v.events
  else begin
    Format.fprintf ppf "@[<v>%s: %d divergence(s)" v.id (List.length v.mismatches);
    List.iter
      (fun m ->
        Format.fprintf ppf "@,  %s: engine=%s oracle=%s" m.what m.engine m.oracle)
      v.mismatches;
    Format.fprintf ppf "@]"
  end

(* ------------------------------------------------------------------ *)
(* Running both sides. *)

type 'a outcome = Finished of 'a | Raised of string

let engine_side (r : run) =
  let events_rev = ref [] in
  let sink =
    Mac_sim.Sink.make (fun ~round ev -> events_rev := (round, ev) :: !events_rev)
  in
  let adversary =
    Mac_adversary.Adversary.create_q ~name:r.id ~rate:r.rate ~burst:r.burst
      ~pacing:r.pacing r.pattern
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:r.rounds) with
      drain_limit = r.drain;
      strict = false;
      check_schedule = false;
      sink = Some sink;
      faults = r.faults }
  in
  let outcome =
    try
      Finished
        (Mac_sim.Engine.run ~config ~algorithm:r.algorithm ~n:r.n ~k:r.k
           ~adversary ~rounds:r.rounds ())
    with Mac_sim.Engine.Protocol_violation msg -> Raised msg
  in
  (outcome, List.rev !events_rev)

let oracle_side (r : run) =
  try
    let digest, events =
      Oracle.run ~algorithm:r.algorithm ~n:r.n ~k:r.k ~rate:r.rate
        ~burst:r.burst ~pacing:r.pacing ~pattern:r.pattern ~rounds:r.rounds
        ~drain:r.drain ~strict:false ?faults:r.faults ()
    in
    (Finished digest, events)
  with Oracle.Violation msg -> (Raised msg, [])

(* ------------------------------------------------------------------ *)
(* Comparison. *)

let fmt_float f = Printf.sprintf "%h" f

let compare_summary (s : Mac_sim.Metrics.summary) (d : Oracle.digest) =
  let acc = ref [] in
  let int what a b =
    if a <> b then
      acc := { what; engine = string_of_int a; oracle = string_of_int b } :: !acc
  in
  (* Float fields are compared bit-for-bit: both sides accumulate in the
     same order, so any difference is a real drift. *)
  let flt what a b =
    if Int64.bits_of_float a <> Int64.bits_of_float b then
      acc := { what; engine = fmt_float a; oracle = fmt_float b } :: !acc
  in
  int "rounds" s.rounds d.rounds;
  int "drain_rounds" s.drain_rounds d.drain_rounds;
  int "injected" s.injected d.injected;
  int "delivered" s.delivered d.delivered;
  int "undelivered" s.undelivered d.undelivered;
  int "max_delay" s.max_delay d.max_delay;
  flt "mean_delay" s.mean_delay d.mean_delay;
  int "max_queued_age" s.max_queued_age d.max_queued_age;
  int "max_total_queue" s.max_total_queue d.max_total_queue;
  int "final_total_queue" s.final_total_queue d.final_total_queue;
  int "max_station_queue" s.max_station_queue d.max_station_queue;
  int "energy_cap" s.energy_cap d.energy_cap;
  int "max_on" s.max_on d.max_on;
  flt "mean_on" s.mean_on d.mean_on;
  int "station_rounds" s.station_rounds d.station_rounds;
  int "silent_rounds" s.silent_rounds d.silent_rounds;
  int "light_rounds" s.light_rounds d.light_rounds;
  int "delivery_rounds" s.delivery_rounds d.delivery_rounds;
  int "relay_rounds" s.relay_rounds d.relay_rounds;
  int "collision_rounds" s.collision_rounds d.collision_rounds;
  int "max_hops" s.max_hops d.max_hops;
  int "control_bits_total" s.control_bits_total d.control_bits_total;
  int "control_bits_max" s.control_bits_max d.control_bits_max;
  int "cap_exceeded" s.violations.cap_exceeded d.cap_exceeded;
  int "stranded" s.violations.stranded d.stranded;
  int "adoption_conflicts" s.violations.adoption_conflicts d.adoption_conflicts;
  int "spurious_adoptions" s.violations.spurious_adoptions d.spurious_adoptions;
  int "crashes" s.faults.crashes d.crashes;
  int "restarts" s.faults.restarts d.restarts;
  int "jammed_rounds" s.faults.jammed_rounds d.jammed_rounds;
  int "noise_rounds" s.faults.noise_rounds d.noise_rounds;
  int "lost_to_crash" s.faults.lost_to_crash d.lost_to_crash;
  int "last_fault_round" s.faults.last_fault_round d.last_fault_round;
  int "pre_fault_queue" s.faults.pre_fault_queue d.pre_fault_queue;
  int "post_fault_peak_queue" s.faults.post_fault_peak_queue
    d.post_fault_peak_queue;
  int "recovery_rounds" s.faults.recovery_rounds d.recovery_rounds;
  List.rev !acc

let fmt_event (round, ev) = Printf.sprintf "r%d %s" round (Event.to_string ev)

let compare_events engine_events oracle_events =
  let rec go i es os =
    match (es, os) with
    | [], [] -> None
    | e :: es', o :: os' ->
      if e = o then go (i + 1) es' os'
      else
        Some
          { what = Printf.sprintf "event[%d]" i;
            engine = fmt_event e;
            oracle = fmt_event o }
    | e :: _, [] ->
      Some
        { what = Printf.sprintf "event[%d]" i;
          engine = fmt_event e;
          oracle = "<stream ended>" }
    | [], o :: _ ->
      Some
        { what = Printf.sprintf "event[%d]" i;
          engine = "<stream ended>";
          oracle = fmt_event o }
  in
  go 0 engine_events oracle_events

let run_pair ~(engine : run) ~(oracle : run) =
  let id = engine.id in
  let e_outcome, e_events = engine_side engine in
  let o_outcome, o_events = oracle_side oracle in
  let events = max (List.length e_events) (List.length o_events) in
  let mismatches =
    match (e_outcome, o_outcome) with
    | Finished s, Finished d -> (
      let fields = compare_summary s d in
      match compare_events e_events o_events with
      | None -> fields
      | Some m -> fields @ [ m ])
    | Raised e, Raised o ->
      if e = o then []
      else [ { what = "exception"; engine = e; oracle = o } ]
    | Finished _, Raised o ->
      [ { what = "exception"; engine = "<finished>"; oracle = o } ]
    | Raised e, Finished _ ->
      [ { what = "exception"; engine = e; oracle = "<finished>" } ]
  in
  { id; events; mismatches }

let run_pairs ?(jobs = 1) pairs =
  Mac_sim.Pool.map ~jobs pairs (fun (engine, oracle) -> run_pair ~engine ~oracle)

(* ------------------------------------------------------------------ *)
(* Random configurations. *)

(* Each entry: a human tag plus (n, k) bounds-respecting builder. The
   algorithm values themselves are stateless (per-station state is created
   inside each run), so engine and oracle can share one value. *)
let build_algorithm rng =
  let pick_nk ~nmin ~nmax ~kmax_of rng =
    let n = nmin + Rng.int rng (nmax - nmin + 1) in
    let kmax = kmax_of n in
    let k = 2 + Rng.int rng (max 1 (kmax - 1)) in
    (n, min k kmax)
  in
  match Rng.int rng 15 with
  | 0 ->
    let n = 3 + Rng.int rng 6 in
    (n, 3, (module Mac_routing.Orchestra : Algorithm.S))
  | 8 ->
    let n = 3 + Rng.int rng 8 in
    (n, 2 + Rng.int rng 3, (module Mac_routing.Pair_tdma : Algorithm.S))
  | 1 ->
    let n, k = pick_nk ~nmin:4 ~nmax:10 ~kmax_of:(fun n -> n - 1) rng in
    (n, k, Mac_routing.K_cycle.algorithm ~n ~k)
  | 2 ->
    let n, k = pick_nk ~nmin:4 ~nmax:7 ~kmax_of:(fun n -> n - 1) rng in
    (n, k, Mac_routing.K_subsets.algorithm ~n ~k ())
  | 3 ->
    let n, k = pick_nk ~nmin:4 ~nmax:7 ~kmax_of:(fun n -> n - 1) rng in
    (n, k, Mac_routing.K_subsets.algorithm ~discipline:`Rrw ~n ~k ())
  | 4 ->
    let n, k = pick_nk ~nmin:4 ~nmax:8 ~kmax_of:(fun n -> n - 1) rng in
    (n, k, Mac_routing.K_clique.algorithm ~n ~k)
  | 5 ->
    let n, k = pick_nk ~nmin:3 ~nmax:9 ~kmax_of:(fun n -> n) rng in
    (n, k, Mac_routing.Random_leader.algorithm ~seed:(Rng.int rng 1000) ~n ~k ())
  | 6 ->
    let n = 3 + Rng.int rng 6 in
    (n, 2, (module Mac_routing.Count_hop : Algorithm.S))
  (* The broadcast family runs all stations switched on (required_cap = n),
     so the supply cap is pinned to n. *)
  | 9 ->
    let n = 2 + Rng.int rng 7 in
    (n, n, (module Mac_broadcast.Rrw : Algorithm.S))
  | 10 ->
    let n = 2 + Rng.int rng 7 in
    (n, n, (module Mac_broadcast.Of_rrw : Algorithm.S))
  | 11 ->
    let n = 2 + Rng.int rng 7 in
    (n, n, (module Mac_broadcast.Mbtf : Algorithm.S))
  | 12 ->
    let n = 2 + Rng.int rng 7 in
    (n, n, Mac_broadcast.Ring_broadcast.full_sensing ())
  | 13 ->
    let n = 2 + Rng.int rng 7 in
    (n, n, Mac_broadcast.Ring_broadcast.ack_based ())
  | 14 ->
    let n = 2 + Rng.int rng 7 in
    (n, n, Mac_broadcast.Backoff.algorithm ~seed:(Rng.int rng 1000) ())
  | _ ->
    let n = 3 + Rng.int rng 6 in
    (n, 2, (module Mac_routing.Adjust_window : Algorithm.S))

(* A pattern *maker*: called once per side so each run owns fresh state.
   Every random draw happens before the thunk is built — both calls must
   construct the SAME pattern, differing only in internal state. *)
let build_pattern rng ~n =
  let case = Rng.int rng 7 in
  let seed = Rng.int rng 10_000 in
  let a = Rng.int rng n in
  let b = (a + 1 + Rng.int rng (n - 1)) mod n in
  let bias = 0.25 +. (0.5 *. float_of_int (Rng.int rng 3) /. 2.0) in
  let busy = 5 + Rng.int rng 20 in
  let idle = 5 + Rng.int rng 20 in
  fun () ->
    match case with
    | 0 -> Mac_adversary.Pattern.uniform ~n ~seed
    | 1 -> Mac_adversary.Pattern.flood ~n ~victim:a
    | 2 -> Mac_adversary.Pattern.pair_flood ~src:a ~dst:b
    | 3 -> Mac_adversary.Pattern.round_robin ~n
    | 4 ->
      (* keep both destinations distinct from the source [a] *)
      let e = (b + 1) mod n in
      let dst_even = if e = a then (e + 1) mod n else e in
      Mac_adversary.Pattern.alternating ~src:a ~dst_odd:b ~dst_even
    | 5 -> Mac_adversary.Pattern.hotspot ~n ~seed ~hot:a ~bias
    | 6 ->
      Mac_adversary.Pattern.duty_cycle ~busy ~idle
        (Mac_adversary.Pattern.uniform ~n ~seed)
    | _ -> assert false

let random_pair ~seed =
  let rng = Rng.create ~seed in
  let n, k, algorithm = build_algorithm rng in
  let den = 1 + Rng.int rng 12 in
  let num = 1 + Rng.int rng den in
  let rate = Qrat.make num den in
  let burst =
    Qrat.add (Qrat.of_int (1 + Rng.int rng 4)) (Qrat.make 1 (2 + Rng.int rng 6))
  in
  let pacing =
    match Rng.int rng 3 with
    | 0 -> Mac_adversary.Adversary.Greedy
    | 1 -> Mac_adversary.Adversary.Paced { burst_at = None }
    | _ -> Mac_adversary.Adversary.Paced { burst_at = Some (Rng.int rng 200) }
  in
  let rounds = 200 + Rng.int rng 1100 in
  let drain = if Rng.bool rng then rounds / 2 else 0 in
  let faults =
    match Rng.int rng 3 with
    | 0 -> None
    | 1 ->
      Some
        (Mac_faults.Fault_plan.random ~seed:(Rng.int rng 10_000) ~n ~rounds
           ~jam_rate:0.01 ~noise_rate:0.005 ())
    | _ ->
      Some
        (Mac_faults.Fault_plan.random ~seed:(Rng.int rng 10_000) ~n ~rounds
           ~crash_rate:0.002 ~jam_rate:0.005
           ~restart_after:(if Rng.bool rng then 0 else 40)
           ~queue:(if Rng.bool rng then Mac_faults.Fault_plan.Retain
                   else Mac_faults.Fault_plan.Drop)
           ())
  in
  let make_pattern = build_pattern rng ~n in
  let make pattern =
    { id =
        Printf.sprintf "seed=%d %s n=%d k=%d rho=%s beta=%s r=%d"
          seed pattern.Mac_adversary.Pattern.name n k (Qrat.to_string rate)
          (Qrat.to_string burst) rounds;
      algorithm; n; k; rate; burst; pacing; pattern; rounds; drain; faults }
  in
  (make (make_pattern ()), make (make_pattern ()))

(* ------------------------------------------------------------------ *)
(* Sparse-vs-dense certification: the same configuration through the same
   engine in both modes must be bit-identical — summary (Marshal bytes),
   event stream, and every checkpoint snapshot (Marshal bytes). *)

let engine_mode_side (r : run) ~mode ~with_sink ~checkpoint_every =
  let events_rev = ref [] in
  let sink =
    Mac_sim.Sink.make (fun ~round ev -> events_rev := (round, ev) :: !events_rev)
  in
  let snaps_rev = ref [] in
  let adversary =
    Mac_adversary.Adversary.create_q ~name:r.id ~rate:r.rate ~burst:r.burst
      ~pacing:r.pacing r.pattern
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:r.rounds) with
      drain_limit = r.drain;
      strict = false;
      check_schedule = false;
      sink = (if with_sink then Some sink else None);
      faults = r.faults;
      checkpoint_every;
      on_checkpoint =
        (if checkpoint_every > 0 then
           Some (fun s -> snaps_rev := Marshal.to_string s [] :: !snaps_rev)
         else None);
      mode }
  in
  let outcome =
    try
      Finished
        (Mac_sim.Engine.run ~config ~algorithm:r.algorithm ~n:r.n ~k:r.k
           ~adversary ~rounds:r.rounds ())
    with Mac_sim.Engine.Protocol_violation msg -> Raised msg
  in
  (outcome, List.rev !events_rev, List.rev !snaps_rev)

let compare_summaries (a : Mac_sim.Metrics.summary)
    (b : Mac_sim.Metrics.summary) =
  let acc = ref [] in
  let int what x y =
    if x <> y then
      acc := { what; engine = string_of_int x; oracle = string_of_int y } :: !acc
  in
  let flt what x y =
    if Int64.bits_of_float x <> Int64.bits_of_float y then
      acc := { what; engine = fmt_float x; oracle = fmt_float y } :: !acc
  in
  int "rounds" a.rounds b.rounds;
  int "drain_rounds" a.drain_rounds b.drain_rounds;
  int "injected" a.injected b.injected;
  int "delivered" a.delivered b.delivered;
  int "max_delay" a.max_delay b.max_delay;
  flt "mean_delay" a.mean_delay b.mean_delay;
  int "p99_delay" a.p99_delay b.p99_delay;
  int "max_queued_age" a.max_queued_age b.max_queued_age;
  int "max_total_queue" a.max_total_queue b.max_total_queue;
  int "final_total_queue" a.final_total_queue b.final_total_queue;
  int "max_station_queue" a.max_station_queue b.max_station_queue;
  int "max_on" a.max_on b.max_on;
  flt "mean_on" a.mean_on b.mean_on;
  int "station_rounds" a.station_rounds b.station_rounds;
  int "silent_rounds" a.silent_rounds b.silent_rounds;
  int "light_rounds" a.light_rounds b.light_rounds;
  int "delivery_rounds" a.delivery_rounds b.delivery_rounds;
  int "relay_rounds" a.relay_rounds b.relay_rounds;
  int "collision_rounds" a.collision_rounds b.collision_rounds;
  int "cap_exceeded" a.violations.cap_exceeded b.violations.cap_exceeded;
  int "stranded" a.violations.stranded b.violations.stranded;
  int "crashes" a.faults.crashes b.faults.crashes;
  int "restarts" a.faults.restarts b.faults.restarts;
  int "jammed_rounds" a.faults.jammed_rounds b.faults.jammed_rounds;
  int "lost_to_crash" a.faults.lost_to_crash b.faults.lost_to_crash;
  int "recovery_rounds" a.faults.recovery_rounds b.faults.recovery_rounds;
  int "queue_series_len" (Array.length a.queue_series)
    (Array.length b.queue_series);
  (* The per-field diagnostics above are for readable verdicts; the byte
     compare is the actual equality (it also covers the histograms and the
     series contents). *)
  if
    !acc = []
    && Marshal.to_string a [] <> Marshal.to_string b []
  then
    acc :=
      [ { what = "summary.bytes"; engine = "<differs>"; oracle = "<differs>" } ];
  List.rev !acc

let compare_snapshots tag a b =
  let la = List.length a and lb = List.length b in
  if la <> lb then
    [ { what = Printf.sprintf "%s.count" tag;
        engine = string_of_int la;
        oracle = string_of_int lb } ]
  else
    let rec go i xs ys =
      match (xs, ys) with
      | [], [] -> []
      | x :: xs', y :: ys' ->
        if String.equal x y then go (i + 1) xs' ys'
        else
          [ { what = Printf.sprintf "%s[%d].bytes" tag i;
              engine = Printf.sprintf "<%d bytes>" (String.length x);
              oracle = Printf.sprintf "<%d bytes>" (String.length y) } ]
      | _ -> assert false
    in
    go 0 a b

let certify_sparse ~make =
  (* Three runs over fresh pattern instances of the same configuration:
     dense with sink + checkpoints (the reference), sparse without a sink
     (skip-ahead armed) + checkpoints, sparse with a sink (sparse concrete
     iteration, exact event order). A cadence that is coprime-ish with
     typical schedules lands checkpoints mid-stretch. *)
  let (r1 : run) = make () in
  let checkpoint_every = max 1 (r1.rounds / 7) in
  let d_out, d_events, d_snaps =
    engine_mode_side r1 ~mode:Mac_sim.Engine.Dense ~with_sink:true
      ~checkpoint_every
  in
  let s_out, _, s_snaps =
    engine_mode_side (make ()) ~mode:Mac_sim.Engine.Sparse ~with_sink:false
      ~checkpoint_every
  in
  let se_out, se_events, _ =
    engine_mode_side (make ()) ~mode:Mac_sim.Engine.Sparse ~with_sink:true
      ~checkpoint_every:0
  in
  let events = List.length d_events in
  let outcome_mismatch tag a b =
    match (a, b) with
    | Finished _, Finished _ -> []
    | Raised x, Raised y ->
      if String.equal x y then []
      else [ { what = tag ^ ".exception"; engine = x; oracle = y } ]
    | Finished _, Raised y ->
      [ { what = tag ^ ".exception"; engine = "<finished>"; oracle = y } ]
    | Raised x, Finished _ ->
      [ { what = tag ^ ".exception"; engine = x; oracle = "<finished>" } ]
  in
  let mismatches =
    match (d_out, s_out, se_out) with
    | Finished ds, Finished ss, Finished ses ->
      compare_summaries ds ss
      @ compare_snapshots "checkpoint" d_snaps s_snaps
      @ compare_summaries ses ds
      @ (match compare_events d_events se_events with
         | None -> []
         | Some m -> [ m ])
    | _ ->
      outcome_mismatch "sparse" d_out s_out
      @ outcome_mismatch "sparse+sink" d_out se_out
  in
  { id = r1.id ^ " [sparse-certify]"; events; mismatches }

let random_sparse ~seed =
  (* Like [random_pair] but pinned to a sparse-capable algorithm
     (pair-TDMA or the ack-based broadcast TDMA) and returned as a maker:
     the certifier needs three fresh pattern instances, not two. *)
  let rng = Rng.create ~seed in
  let n = 3 + Rng.int rng 8 in
  let k, algorithm =
    if Rng.bool rng then
      (2 + Rng.int rng 3, (module Mac_routing.Pair_tdma : Algorithm.S))
    else (n, (module Mac_broadcast.Ack_rr : Algorithm.S))
  in
  let den = 1 + Rng.int rng 12 in
  let num = 1 + Rng.int rng den in
  let rate = Qrat.make num den in
  let burst =
    Qrat.add (Qrat.of_int (1 + Rng.int rng 4)) (Qrat.make 1 (2 + Rng.int rng 6))
  in
  let pacing =
    match Rng.int rng 3 with
    | 0 -> Mac_adversary.Adversary.Greedy
    | 1 -> Mac_adversary.Adversary.Paced { burst_at = None }
    | _ -> Mac_adversary.Adversary.Paced { burst_at = Some (Rng.int rng 200) }
  in
  let rounds = 200 + Rng.int rng 1100 in
  let drain = if Rng.bool rng then rounds / 2 else 0 in
  let faults =
    match Rng.int rng 3 with
    | 0 -> None
    | 1 ->
      Some
        (Mac_faults.Fault_plan.random ~seed:(Rng.int rng 10_000) ~n ~rounds
           ~jam_rate:0.01 ~noise_rate:0.005 ())
    | _ ->
      Some
        (Mac_faults.Fault_plan.random ~seed:(Rng.int rng 10_000) ~n ~rounds
           ~crash_rate:0.002 ~jam_rate:0.005
           ~restart_after:(if Rng.bool rng then 0 else 40)
           ~queue:(if Rng.bool rng then Mac_faults.Fault_plan.Retain
                   else Mac_faults.Fault_plan.Drop)
           ())
  in
  let make_pattern = build_pattern rng ~n in
  fun () ->
    let pattern = make_pattern () in
    { id =
        Printf.sprintf "sparse-seed=%d %s n=%d k=%d rho=%s beta=%s r=%d" seed
          pattern.Mac_adversary.Pattern.name n k (Qrat.to_string rate)
          (Qrat.to_string burst) rounds;
      algorithm; n; k; rate; burst; pacing; pattern; rounds; drain; faults }

let certify_sparse_batch ?(jobs = 1) makers =
  Mac_sim.Pool.map ~jobs makers (fun make -> certify_sparse ~make)
