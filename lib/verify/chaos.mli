(** Seeded chaos testing of the supervision and durability layers.

    Each seeded configuration exercises three axes and asserts that
    completed work is bit-identical to an undisturbed run:

    - a supervised batch of random engine runs in which scripted jobs fail
      their first attempts, fail every attempt, kill their worker domain,
      or stall past the watchdog deadline — [Ok] results must match the
      undisturbed digests, designed failures must surface as exactly the
      documented {!Mac_sim.Supervisor.error} and event counts;
    - checkpoint corruption — the newest {!Mac_sim.Checkpoint.write_rotated}
      file is truncated, bit-flipped or deleted, [read_latest] must salvage
      the rotated previous file, and resuming from it must reproduce the
      undisturbed summary bit for bit;
    - an injected rename failure inside {!Mac_sim.Durable.write_atomic} —
      the destination must keep its previous contents.

    Deterministic given [(count, seed)] apart from wall-clock-driven
    watchdog scheduling, whose {e effects} are asserted, not its timing. *)

type stats = {
  mutable configs : int;
  mutable jobs_run : int;
  mutable failed_attempts : int;
  mutable timed_out_attempts : int;
  mutable worker_kills : int;
  mutable quarantines : int;
  mutable salvages : int;
  mutable checks : int;
  mutable failures : string list;  (** empty = all assertions held *)
}

val passed : stats -> bool

val pp_stats : Format.formatter -> stats -> unit

val run :
  ?log:(string -> unit) ->
  ?dir:string ->
  count:int ->
  seed:int ->
  unit ->
  stats
(** [run ~count ~seed ()] exercises configurations [seed .. seed+count-1].
    [log] receives a one-line progress message per configuration. [dir] is
    the scratch directory for checkpoint and failpoint files (default: a
    fresh directory under the system temp dir, removed afterwards; scratch
    files themselves are always cleaned up). Temporarily installs
    {!Mac_sim.Durable.failpoint} (restored to [None]) — do not run
    concurrently with other writers in the same process. *)
