(** A deliberately naive reference simulator.

    The oracle re-implements the channel semantics — admission (the exact
    leaky-bucket recurrence), mode decisions, channel resolution, packet
    fate, faults, and packet conservation — from the paper's description,
    with none of the engine's performance machinery: no scratch arrays, no
    maintained totals, no fast paths. Queue sizes and backlogs are
    recomputed by scanning every queue each time they are needed
    (O(n²)-ish per round), packet tracking is a linear scan of a list, and
    events are consed onto a list. It is slow on purpose: the value of a
    differential harness is exactly that the two implementations share no
    shortcuts, so a drift bug in either one shows up as a divergence
    ({!Diff}).

    The oracle additionally re-checks packet conservation from first
    principles at every round end — the sum of scanned queue sizes must
    equal injected − delivered − lost-to-crash — and raises {!Violation}
    if it ever fails. *)

exception Violation of string
(** Mirrors [Mac_sim.Engine.Protocol_violation], message for message, so
    a differential driver can match "both implementations rejected this
    run for the same reason". *)

(** The oracle's independently computed run statistics: the comparable
    subset of [Mac_sim.Metrics.summary] (everything except the
    log-bucketed histogram, its p99 read-out, and the sampled queue
    series, which are engine implementation details tested on their
    own). Field meanings match the summary field of the same name. *)
type digest = {
  rounds : int;
  drain_rounds : int;
  injected : int;
  delivered : int;
  undelivered : int;
  max_delay : int;
  mean_delay : float;
  max_queued_age : int;
  max_total_queue : int;
  final_total_queue : int;
  max_station_queue : int;
  energy_cap : int;
  max_on : int;
  mean_on : float;
  station_rounds : int;
  silent_rounds : int;
  light_rounds : int;
  delivery_rounds : int;
  relay_rounds : int;
  collision_rounds : int;
  max_hops : int;
  control_bits_total : int;
  control_bits_max : int;
  cap_exceeded : int;
  stranded : int;
  adoption_conflicts : int;
  spurious_adoptions : int;
  crashes : int;
  restarts : int;
  jammed_rounds : int;
  noise_rounds : int;
  lost_to_crash : int;
  last_fault_round : int;
  pre_fault_queue : int;
  post_fault_peak_queue : int;
  recovery_rounds : int;
}

val run :
  algorithm:Mac_channel.Algorithm.t ->
  n:int ->
  k:int ->
  rate:Mac_channel.Qrat.t ->
  burst:Mac_channel.Qrat.t ->
  pacing:Mac_adversary.Adversary.pacing ->
  pattern:Mac_adversary.Pattern.t ->
  rounds:int ->
  drain:int ->
  ?strict:bool ->
  ?faults:Mac_faults.Fault_plan.t ->
  unit ->
  digest * (int * Mac_channel.Event.t) list
(** Simulate the run and return the digest plus the complete event
    stream ((round, event) pairs, in emission order) — the stream an
    engine run with a recording sink must reproduce verbatim. [strict]
    defaults to [false]: protocol violations are counted, not raised
    (matching the configuration {!Diff} runs the engine with); hard
    model breaches (a transmitted packet not in the queue, duplicate
    delivery, conservation failure, …) raise {!Violation} regardless. *)
