(** Differential checking: the engine against the naive {!Oracle}.

    A {!run} describes one simulation the way both implementations
    understand it. Because patterns are stateful (cycling counters,
    PRNGs), the engine and the oracle must each get a {e fresh} pattern
    instance — hence every entry point takes a pair of runs, equal in
    every respect except that their [pattern] fields hold independently
    created state. {!random_pair} builds such pairs from a seed;
    experiment drivers get theirs by instantiating their catalog twice.

    A divergence — any summary field or any event differing — is a drift
    bug in one of the two implementations; the verdict says where they
    first disagreed. *)

type run = {
  id : string;
  algorithm : Mac_channel.Algorithm.t;
  n : int;
  k : int;
  rate : Mac_channel.Qrat.t;
  burst : Mac_channel.Qrat.t;
  pacing : Mac_adversary.Adversary.pacing;
  pattern : Mac_adversary.Pattern.t;
  rounds : int;
  drain : int;
  faults : Mac_faults.Fault_plan.t option;
}

type mismatch = {
  what : string;   (** summary field name, or ["event[i]"] / ["exception"] *)
  engine : string; (** the engine's value, rendered *)
  oracle : string; (** the oracle's value, rendered *)
}

type verdict = {
  id : string;
  events : int;    (** events compared (the longer stream's length) *)
  mismatches : mismatch list; (** empty = the implementations agree *)
}

val agrees : verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit
(** One line when agreeing; id plus each mismatch on its own line
    otherwise. *)

val run_pair : engine:run -> oracle:run -> verdict
(** Run [engine] through [Mac_sim.Engine.run] (strict off, schedule
    check off, recording sink) and [oracle] through {!Oracle.run}, then
    compare the two event streams exactly and every comparable summary
    field. If exactly one side raises, that is a mismatch; if both raise
    the same protocol-violation message, they agree. *)

val run_pairs : ?jobs:int -> (run * run) list -> verdict list
(** [run_pair] over a batch on a [Mac_sim.Pool] of [jobs] worker domains
    (default 1 = sequential), results in input order. *)

val random_pair : seed:int -> run * run
(** A deterministic random configuration: algorithm (Orchestra, k-Cycle,
    k-Subsets under both disciplines, k-Clique, Random-Leader, Count-Hop,
    Adjust-Window, pair-TDMA), system size, exact rational (ρ, β), pacing,
    pattern, drain, and an optional fault plan, all drawn from [seed] via
    {!Mac_channel.Rng}. Equal seeds give equal configurations; the two
    returned runs differ only in pattern state. *)

val certify_sparse : make:(unit -> run) -> verdict
(** Certify the engine's sparse mode against its dense mode on one
    configuration. [make] must build a fresh instance of the same run on
    every call (patterns are stateful); it is called three times: dense
    with a recording sink and periodic checkpoints (the reference), sparse
    without a sink (skip-ahead armed) with the same checkpoint cadence,
    and sparse with a sink. Agreement means: every summary field and the
    summary's Marshal bytes, every checkpoint snapshot's Marshal bytes,
    and the full event stream are identical across modes. Requires a
    sparse-capable algorithm ([Invalid_argument] otherwise — that is the
    engine's own check). *)

val certify_sparse_batch : ?jobs:int -> (unit -> run) list -> verdict list
(** {!certify_sparse} over a batch on a [Mac_sim.Pool] of [jobs] worker
    domains (default 1 = sequential), results in input order. *)

val random_sparse : seed:int -> unit -> run
(** Like {!random_pair} but pinned to a sparse-capable algorithm
    (pair-TDMA) and shaped for {!certify_sparse}: the result is a maker
    producing any number of fresh instances of the one drawn
    configuration. *)
