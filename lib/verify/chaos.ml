(* The chaos harness: seeded fault injection against the supervision and
   durability layers, with bit-identity as the oracle.

   Three axes per seeded configuration:

   - {e Supervisor}: a batch of random engine runs (from {!Diff.random_pair}
     seeds) executes under {!Mac_sim.Supervisor.map} while jobs misbehave on
     a seeded script — fail their first attempts, fail every attempt, kill
     their worker domain, or stall past the watchdog deadline. Every job
     that the supervisor reports [Ok] must produce a summary digest
     bit-identical to the same configuration run undisturbed, and every
     designed failure must surface as exactly the documented outcome and
     event stream.

   - {e Checkpoints}: a run checkpoints through {!Mac_sim.Checkpoint.write_rotated},
     the newest checkpoint file is then truncated, bit-flipped or deleted,
     and {!Mac_sim.Checkpoint.read_latest} must salvage the rotated
     previous checkpoint; resuming from it must reproduce the undisturbed
     run's summary bit for bit.

   - {e Atomic writes}: a {!Mac_sim.Durable.failpoint} makes the rename
     step of an atomic write fail; the destination must keep its previous
     contents and the tmp sibling must not linger.

   Jobs re-derive their run configuration from the seed on {e every}
   attempt (patterns are stateful cursors), so a retry replays exactly the
   run a first attempt would have made. *)

module Supervisor = Mac_sim.Supervisor

type stats = {
  mutable configs : int;
  mutable jobs_run : int;
  mutable failed_attempts : int;
  mutable timed_out_attempts : int;
  mutable worker_kills : int;
  mutable quarantines : int;
  mutable salvages : int;
  mutable checks : int;
  mutable failures : string list;  (* newest first *)
}

let fresh_stats () =
  { configs = 0; jobs_run = 0; failed_attempts = 0; timed_out_attempts = 0;
    worker_kills = 0; quarantines = 0; salvages = 0; checks = 0;
    failures = [] }

let passed st = st.failures = []

let pp_stats ppf st =
  Format.fprintf ppf
    "%d configs, %d supervised jobs (%d failed attempts, %d timeouts, %d \
     worker kills, %d quarantines), %d checkpoint salvages, %d assertions, \
     %d failure%s"
    st.configs st.jobs_run st.failed_attempts st.timed_out_attempts
    st.worker_kills st.quarantines st.salvages st.checks
    (List.length st.failures)
    (if List.length st.failures = 1 then "" else "s")

exception Boom of string

(* ---- engine plumbing -------------------------------------------------- *)

let digest_summary (s : Mac_sim.Metrics.summary) =
  Digest.to_hex (Digest.string (Marshal.to_string s []))

let run_engine ?heartbeat ?(checkpoint_every = 0) ?on_checkpoint ?resume
    (r : Diff.run) =
  let adversary =
    Mac_adversary.Adversary.create_q ~name:r.id ~rate:r.rate ~burst:r.burst
      ~pacing:r.pacing r.pattern
  in
  let config =
    { (Mac_sim.Engine.default_config ~rounds:r.rounds) with
      drain_limit = r.drain;
      strict = false;
      check_schedule = false;
      faults = r.faults;
      heartbeat;
      checkpoint_every;
      on_checkpoint }
  in
  Mac_sim.Engine.run ~config ?resume ~algorithm:r.algorithm ~n:r.n ~k:r.k
    ~adversary ~rounds:r.rounds ()

(* ---- the supervisor axis ---------------------------------------------- *)

type mode = Clean | Fail_first of int | Always_fail | Kill_first | Stall_first

let mode_name = function
  | Clean -> "clean"
  | Fail_first k -> Printf.sprintf "fail-first-%d" k
  | Always_fail -> "always-fail"
  | Kill_first -> "kill-first"
  | Stall_first -> "stall-first"

(* Stalling means burning wall-clock {e without} heartbeat progress: long
   sleeps, a heartbeat poll between them so the watchdog's cancellation is
   actually received. The bound turns a watchdog bug into a test failure
   rather than a hang. *)
let stall ~heartbeat ~timeout =
  for _ = 1 to 60 do
    Unix.sleepf (3.0 *. timeout);
    heartbeat ()
  done;
  raise (Boom "stall was never cancelled by the watchdog")

let supervised_case ~seed (st : stats) =
  let rng = Mac_channel.Rng.create ~seed:((seed * 7) + 1) in
  let njobs = 3 + Mac_channel.Rng.int rng 4 in
  let workers = 1 + Mac_channel.Rng.int rng 3 in
  let quarantine = Mac_channel.Rng.int rng 4 = 0 in
  let allow_stall = Mac_channel.Rng.int rng 4 = 0 in
  let timeout = 0.05 in
  let fresh j = fst (Diff.random_pair ~seed:((seed * 131) + j)) in
  let modes =
    Array.init njobs (fun _ ->
        match Mac_channel.Rng.int rng 8 with
        | 0 | 1 ->
          (* Two scripted failures would quarantine at threshold 2 before
             the job ever succeeds, so cap the script at one. *)
          Fail_first (if quarantine then 1 else 1 + Mac_channel.Rng.int rng 2)
        | 2 -> Always_fail
        | 3 -> Kill_first
        | 4 when allow_stall -> Stall_first
        | _ -> Clean)
  in
  let any_stall = Array.exists (fun m -> m = Stall_first) modes in
  let policy =
    { Supervisor.retries = 2;
      job_timeout = (if any_stall then timeout else 0.0);
      backoff = 0.0005;
      backoff_cap = 0.004;
      quarantine_after = (if quarantine then 2 else 0);
      keep_going = true }
  in
  let label j = Printf.sprintf "job%d:%s" j (mode_name modes.(j)) in
  let baseline = Array.init njobs (fun j -> digest_summary (run_engine (fresh j))) in
  (* Event tallies per label; events arrive from worker domains. *)
  let emu = Mutex.create () in
  let tally = Hashtbl.create 16 in
  let bump key l =
    Mutex.lock emu;
    Hashtbl.replace tally (key, l)
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally (key, l)));
    Mutex.unlock emu
  in
  let count key l = Option.value ~default:0 (Hashtbl.find_opt tally (key, l)) in
  let on_event = function
    | Supervisor.Attempt_failed { label; _ } -> bump `Fail label
    | Supervisor.Attempt_timed_out { label; _ } -> bump `Timeout label
    | Supervisor.Worker_killed { label; _ } -> bump `Kill label
    | _ -> ()
  in
  let killed = Array.make njobs false in
  let outcomes =
    Supervisor.map ~policy ~label ~on_event ~jobs:workers
      (List.init njobs Fun.id)
      (fun ~heartbeat ~attempt j ->
        (match modes.(j) with
        | Clean -> ()
        | Fail_first k -> if attempt <= k then raise (Boom (label j))
        | Always_fail -> raise (Boom (label j))
        | Kill_first ->
          if not killed.(j) then begin
            killed.(j) <- true;
            raise Supervisor.Kill_worker
          end
        | Stall_first -> if attempt = 1 then stall ~heartbeat ~timeout);
        digest_summary (run_engine ~heartbeat (fresh j)))
  in
  st.jobs_run <- st.jobs_run + njobs;
  let record msg l = st.failures <- Printf.sprintf "seed %d %s: %s" seed l msg :: st.failures in
  List.iteri
    (fun j outcome ->
      let l = label j in
      st.checks <- st.checks + 1;
      match (modes.(j), outcome) with
      | (Clean | Fail_first _ | Kill_first | Stall_first), Ok d ->
        if d <> baseline.(j) then
          record "digest diverged from the undisturbed run" l;
        (match modes.(j) with
        | Fail_first k ->
          st.failed_attempts <- st.failed_attempts + count `Fail l;
          if count `Fail l <> k then
            record
              (Printf.sprintf "expected %d failed attempts, saw %d" k
                 (count `Fail l))
              l
        | Kill_first ->
          st.worker_kills <- st.worker_kills + count `Kill l;
          if count `Kill l < 1 then record "no Worker_killed event" l
        | Stall_first ->
          st.timed_out_attempts <- st.timed_out_attempts + count `Timeout l;
          if count `Timeout l < 1 then record "no Attempt_timed_out event" l
        | _ -> ())
      | Always_fail, Error (Supervisor.Failed { attempts; error = Boom _ })
        when not quarantine ->
        st.failed_attempts <- st.failed_attempts + count `Fail l;
        if attempts <> policy.retries + 1 then
          record
            (Printf.sprintf "expected %d attempts, reported %d"
               (policy.retries + 1) attempts)
            l
      | Always_fail, Error (Supervisor.Quarantined { failures })
        when quarantine ->
        st.quarantines <- st.quarantines + 1;
        if failures <> policy.quarantine_after then
          record
            (Printf.sprintf "expected quarantine after %d failures, got %d"
               policy.quarantine_after failures)
            l
      | _, o ->
        let got =
          match o with
          | Ok _ -> "Ok"
          | Error e -> Supervisor.error_to_string e
        in
        record (Printf.sprintf "unexpected outcome: %s" got) l)
    outcomes

(* ---- the checkpoint axis ---------------------------------------------- *)

type corruption = Truncate | Bit_flip | Delete

let corruption_name = function
  | Truncate -> "truncate"
  | Bit_flip -> "bit-flip"
  | Delete -> "delete"

let corrupt ~rng ~path = function
  | Truncate ->
    let s = Mac_sim.Durable.read_file path in
    let oc = open_out_bin path in
    output_string oc (String.sub s 0 (String.length s / 2));
    close_out oc
  | Bit_flip ->
    let b = Bytes.of_string (Mac_sim.Durable.read_file path) in
    let pos = Mac_channel.Rng.int rng (Bytes.length b) in
    let bit = Mac_channel.Rng.int rng 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  | Delete -> Sys.remove path

let checkpoint_case ~dir ~seed (st : stats) =
  let rng = Mac_channel.Rng.create ~seed:((seed * 7) + 2) in
  let fresh () = fst (Diff.random_pair ~seed:((seed * 131) + 997)) in
  let record msg =
    st.failures <- Printf.sprintf "seed %d checkpoint: %s" seed msg :: st.failures
  in
  let r = fresh () in
  let path = Filename.concat dir (Printf.sprintf "ck-%d.ckpt" seed) in
  (* Enough checkpoints that the rotation sibling exists by the end. *)
  let every = max 1 (r.Diff.rounds / 4) in
  let baseline =
    digest_summary
      (run_engine ~checkpoint_every:every
         ~on_checkpoint:(fun snap -> Mac_sim.Checkpoint.write_rotated ~path snap)
         (fresh ()))
  in
  st.checks <- st.checks + 1;
  if not (Sys.file_exists (Mac_sim.Checkpoint.prev_path path)) then
    record "no rotated .prev checkpoint was written"
  else begin
    let kind =
      match Mac_channel.Rng.int rng 3 with
      | 0 -> Truncate
      | 1 -> Bit_flip
      | _ -> Delete
    in
    corrupt ~rng ~path kind;
    match Mac_sim.Checkpoint.read_latest ~path with
    | Ok (snap, `Salvaged _) ->
      st.salvages <- st.salvages + 1;
      let resumed = digest_summary (run_engine ~resume:snap (fresh ())) in
      if resumed <> baseline then
        record
          (Printf.sprintf
             "resume after %s salvage diverged from the undisturbed run"
             (corruption_name kind))
    | Ok (_, `Current) ->
      record
        (Printf.sprintf "%s corruption went undetected" (corruption_name kind))
    | Error e ->
      record
        (Printf.sprintf "salvage after %s failed: %s" (corruption_name kind) e)
  end;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path; Mac_sim.Checkpoint.prev_path path ]

(* ---- the atomic-writer axis ------------------------------------------- *)

let failpoint_case ~dir ~seed (st : stats) =
  let record msg =
    st.failures <- Printf.sprintf "seed %d failpoint: %s" seed msg :: st.failures
  in
  let path = Filename.concat dir (Printf.sprintf "fp-%d.dat" seed) in
  let tmp = Filename.concat dir (Printf.sprintf ".fp-%d.dat.tmp" seed) in
  Mac_sim.Durable.write_string ~path "first generation\n";
  Mac_sim.Durable.failpoint :=
    Some
      (fun ~stage ~path:_ ->
        if stage = "rename" then
          raise (Mac_sim.Durable.Injected_failure "chaos: rename failed"));
  let raised =
    match Mac_sim.Durable.write_string ~path "second generation\n" with
    | () -> false
    | exception Mac_sim.Durable.Injected_failure _ -> true
  in
  Mac_sim.Durable.failpoint := None;
  st.checks <- st.checks + 1;
  if not raised then record "injected rename failure did not surface";
  if Mac_sim.Durable.read_file path <> "first generation\n" then
    record "destination lost its previous contents";
  if Sys.file_exists tmp then record "tmp sibling left behind";
  (try Sys.remove path with Sys_error _ -> ())

(* ---- driver ----------------------------------------------------------- *)

let default_dir () =
  let d = Filename.temp_file "mac-chaos" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let run ?log ?dir ~count ~seed () =
  if count < 1 then invalid_arg "Chaos.run: count must be >= 1";
  let log = match log with Some f -> f | None -> fun (_ : string) -> () in
  let made_dir = dir = None in
  let dir = match dir with Some d -> d | None -> default_dir () in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let st = fresh_stats () in
  for c = 0 to count - 1 do
    let seed = seed + c in
    let before = List.length st.failures in
    supervised_case ~seed st;
    checkpoint_case ~dir ~seed st;
    failpoint_case ~dir ~seed st;
    st.configs <- st.configs + 1;
    let bad = List.length st.failures - before in
    log
      (Printf.sprintf "config %d/%d (seed %d): %s" (c + 1) count seed
         (if bad = 0 then "ok" else Printf.sprintf "%d FAILURE(S)" bad))
  done;
  if made_dir then (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  st.failures <- List.rev st.failures;
  st
